open Netcore

let check = Alcotest.check
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

(* -------------------- Ipv4 -------------------- *)

let test_ipv4_roundtrip () =
  List.iter
    (fun s -> check Alcotest.string "roundtrip" s (Ipv4.to_string (ip s)))
    [ "0.0.0.0"; "10.0.1.2"; "255.255.255.255"; "192.168.1.254" ]

let test_ipv4_octets () =
  let a = Ipv4.of_octets 10 20 30 40 in
  check
    Alcotest.(pair (pair int int) (pair int int))
    "octets" ((10, 20), (30, 40))
    (let a, b, c, d = Ipv4.to_octets a in
     ((a, b), (c, d)));
  check Alcotest.int "int value" ((10 lsl 24) lor (20 lsl 16) lor (30 lsl 8) lor 40)
    (Ipv4.to_int a)

let test_ipv4_bad () =
  List.iter
    (fun s ->
      match Ipv4.of_string s with
      | Ok _ -> Alcotest.failf "expected parse failure for %S" s
      | Error _ -> ())
    [ ""; "10.0.0"; "10.0.0.0.0"; "256.0.0.1"; "-1.0.0.0"; "a.b.c.d"; "10..0.1" ]

let test_ipv4_decimal_only () =
  (* int_of_string would happily take all of these; octets must be plain
     decimal digits. *)
  List.iter
    (fun s ->
      match Ipv4.of_string s with
      | Ok _ -> Alcotest.failf "expected parse failure for %S" s
      | Error _ -> ())
    [
      "0x10.1.2.3"; "0o7.0.0.1"; "0b1.0.0.1"; "1_0.0.0.1"; "+1.0.0.0";
      "1.2.3.+4"; " 1.2.3.4"; "1.2.3.4 "; "1. 2.3.4"; "0001.2.3.4";
    ];
  (* Leading zeros are still decimal digits and keep parsing. *)
  check Alcotest.string "leading zeros ok" "10.0.0.1" (Ipv4.to_string (ip "010.0.0.01"))

let test_ipv4_add_wraps () =
  check Alcotest.string "wrap" "0.0.0.1" (Ipv4.to_string (Ipv4.add (ip "255.255.255.255") 2))

(* -------------------- Prefix -------------------- *)

let test_prefix_canonical () =
  let p = Prefix.v (ip "10.1.2.3") 24 in
  check Alcotest.string "canonical" "10.1.2.0/24" (Prefix.to_string p);
  check Alcotest.bool "equal to canonical" true
    (Prefix.equal p (pfx "10.1.2.0/24"))

let test_prefix_mem () =
  let p = pfx "10.1.2.0/24" in
  check Alcotest.bool "member" true (Prefix.mem (ip "10.1.2.255") p);
  check Alcotest.bool "not member" false (Prefix.mem (ip "10.1.3.0") p);
  check Alcotest.bool "everything in /0" true (Prefix.mem (ip "200.1.1.1") (pfx "0.0.0.0/0"))

let test_prefix_subset () =
  check Alcotest.bool "subset" true
    (Prefix.subset ~sub:(pfx "10.1.2.0/25") ~super:(pfx "10.1.2.0/24"));
  check Alcotest.bool "not subset" false
    (Prefix.subset ~sub:(pfx "10.1.2.0/24") ~super:(pfx "10.1.2.0/25"));
  check Alcotest.bool "self subset" true
    (Prefix.subset ~sub:(pfx "10.1.2.0/24") ~super:(pfx "10.1.2.0/24"))

let test_prefix_masks () =
  check Alcotest.string "netmask" "255.255.255.0" (Ipv4.to_string (Prefix.netmask (pfx "10.0.0.0/24")));
  check Alcotest.string "wildcard" "0.0.0.255" (Ipv4.to_string (Prefix.wildcard (pfx "10.0.0.0/24")));
  check Alcotest.string "netmask /31" "255.255.255.254" (Ipv4.to_string (Prefix.netmask (pfx "10.0.0.0/31")));
  check Alcotest.int "size" 256 (Prefix.size (pfx "10.0.0.0/24"))

let test_prefix_32 () =
  let p = pfx "10.1.2.3" in
  check Alcotest.int "len" 32 (Prefix.length p);
  check Alcotest.bool "mem self" true (Prefix.mem (ip "10.1.2.3") p)

let test_alloc_avoids () =
  let avoid = [ pfx "100.64.0.0/24"; pfx "100.64.2.0/23" ] in
  let a = Prefix.alloc_create ~avoid () in
  let p1 = Prefix.alloc_fresh a ~len:24 in
  check Alcotest.string "first free /24" "100.64.1.0/24" (Prefix.to_string p1);
  let p2 = Prefix.alloc_fresh a ~len:24 in
  check Alcotest.string "skips avoided /23" "100.64.4.0/24" (Prefix.to_string p2);
  let p3 = Prefix.alloc_fresh a ~len:30 in
  check Alcotest.bool "no overlap with used" false
    (List.exists (Prefix.overlaps p3) [ p1; p2 ]);
  check Alcotest.int "used count" 3 (List.length (Prefix.alloc_used a))

let test_alloc_exhaustion () =
  let base = pfx "10.0.0.0/30" in
  let a = Prefix.alloc_create ~base ~avoid:[] () in
  let _ = Prefix.alloc_fresh a ~len:31 in
  let _ = Prefix.alloc_fresh a ~len:31 in
  match Prefix.alloc_fresh a ~len:31 with
  | p -> Alcotest.failf "expected exhaustion, got %s" (Prefix.to_string p)
  | exception Prefix.Pool_exhausted e ->
      check Alcotest.string "pool" "10.0.0.0/30" (Prefix.to_string e.pool);
      check Alcotest.int "requested length" 31 e.requested_len;
      check Alcotest.int "cursor at pool end" (Prefix.size base) e.cursor;
      (* The diagnostic must render without an installed handler. *)
      check Alcotest.bool "printable" true
        (let s = Printexc.to_string (Prefix.Pool_exhausted e) in
         String.length s > 0 && s.[0] = 'P')

let test_alloc_exhaustion_probe_bound () =
  (* An [avoid] range covering the whole pool: the cursor jumps over it
     in one step, so exhaustion is detected in O(1) probes — not by
     stepping through all 16k /30 slots of the /16. *)
  let base = pfx "10.0.0.0/16" in
  let a = Prefix.alloc_create ~base ~avoid:[ pfx "10.0.0.0/16" ] () in
  match Prefix.alloc_fresh a ~len:30 with
  | p -> Alcotest.failf "expected exhaustion, got %s" (Prefix.to_string p)
  | exception Prefix.Pool_exhausted e ->
      check Alcotest.int "one probe" 1 e.probes;
      check Alcotest.bool "requested too large is a different error" true
        (match Prefix.alloc_fresh a ~len:8 with
        | _ -> false
        | exception Invalid_argument _ -> true)

let test_alloc_probe_bound () =
  (* A large avoided range in front of the pool: the cursor must jump past
     it instead of stepping /30 by /30 (16k probes for this /18). Each
     allocation costs at most one probe per clashing range plus the
     successful one. *)
  let avoid = [ pfx "100.64.0.0/18"; pfx "100.64.64.0/20" ] in
  let a = Prefix.alloc_create ~avoid () in
  let p1 = Prefix.alloc_fresh a ~len:30 in
  check Alcotest.string "first free /30" "100.64.80.0/30" (Prefix.to_string p1);
  check Alcotest.bool "constant probes, not a linear scan" true
    (Prefix.alloc_probes a <= 3);
  (* Later allocations must not re-scan the avoided ranges. *)
  for _ = 1 to 100 do
    ignore (Prefix.alloc_fresh a ~len:30)
  done;
  check Alcotest.bool "amortized one probe per allocation" true
    (Prefix.alloc_probes a <= 103);
  (* A mixed-size sequence still avoids everything. *)
  let p_big = Prefix.alloc_fresh a ~len:24 in
  check Alcotest.bool "fresh /24 avoids all" false
    (List.exists (Prefix.overlaps p_big) (avoid @ List.tl (Prefix.alloc_used a)))

(* -------------------- Diskcache -------------------- *)

let temp_dir () =
  let f = Filename.temp_file "confmask-diskcache" "" in
  Sys.remove f;
  Sys.mkdir f 0o700;
  f

let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".v")
  |> List.map (Filename.concat dir)

let test_diskcache_roundtrip () =
  let dir = temp_dir () in
  let c = Diskcache.open_dir ~version:"t1" dir in
  check Alcotest.(option string) "miss on empty" None (Diskcache.find c "k1");
  Diskcache.add c ~key:"k1" "payload-one";
  Diskcache.add c ~key:"k2" (String.make 4096 '\x00');
  check Alcotest.(option string) "hit" (Some "payload-one")
    (Diskcache.find c "k1");
  check Alcotest.(option string) "binary payload survives"
    (Some (String.make 4096 '\x00'))
    (Diskcache.find c "k2");
  check Alcotest.int "entries" 2 (Diskcache.entries c);
  (* A second handle on the same directory sees the same entries: the
     cross-process reuse the cache exists for. *)
  let c2 = Diskcache.open_dir ~version:"t1" dir in
  check Alcotest.(option string) "hit after reopen" (Some "payload-one")
    (Diskcache.find c2 "k1")

let test_diskcache_counters () =
  let was = Telemetry.enabled () in
  Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled was) @@ fun () ->
  let hit = Telemetry.counter "diskcache.hit"
  and miss = Telemetry.counter "diskcache.miss"
  and write = Telemetry.counter "diskcache.write" in
  let h0 = Telemetry.value hit
  and m0 = Telemetry.value miss
  and w0 = Telemetry.value write in
  let c = Diskcache.open_dir ~version:"t1" (temp_dir ()) in
  ignore (Diskcache.find c "absent");
  Diskcache.add c ~key:"k" "v";
  ignore (Diskcache.find c "k");
  check Alcotest.int "one hit" (h0 + 1) (Telemetry.value hit);
  check Alcotest.int "one miss" (m0 + 1) (Telemetry.value miss);
  check Alcotest.int "one write" (w0 + 1) (Telemetry.value write)

let test_diskcache_corrupted_entry () =
  let dir = temp_dir () in
  let c = Diskcache.open_dir ~version:"t1" dir in
  Diskcache.add c ~key:"k1" "payload";
  List.iter
    (fun path ->
      let oc = open_out_bin path in
      output_string oc "not a marshaled entry";
      close_out oc)
    (entry_files dir);
  check Alcotest.(option string) "corrupted entry is a miss" None
    (Diskcache.find c "k1");
  (* Still writable and readable after the corruption was detected. *)
  Diskcache.add c ~key:"k1" "payload";
  check Alcotest.(option string) "overwritten" (Some "payload")
    (Diskcache.find c "k1")

let test_diskcache_version_mismatch () =
  let dir = temp_dir () in
  let c = Diskcache.open_dir ~version:"t1" dir in
  Diskcache.add c ~key:"k1" "payload";
  (* A version bump invalidates the directory wholesale. *)
  let c2 = Diskcache.open_dir ~version:"t2" dir in
  check Alcotest.(option string) "old entries gone" None
    (Diskcache.find c2 "k1");
  check Alcotest.int "wiped on disk" 0 (List.length (entry_files dir));
  Diskcache.add c2 ~key:"k1" "fresh";
  check Alcotest.(option string) "new version usable" (Some "fresh")
    (Diskcache.find c2 "k1")

let test_diskcache_corrupted_index () =
  let dir = temp_dir () in
  let c = Diskcache.open_dir ~version:"t1" dir in
  Diskcache.add c ~key:"k1" "payload";
  let oc = open_out_bin (Filename.concat dir "INDEX") in
  output_string oc "garbage\x00index";
  close_out oc;
  (* An unrecognizable index means the directory cannot be trusted:
     reopen treats it as empty rather than serving stale entries. *)
  let c2 = Diskcache.open_dir ~version:"t1" dir in
  check Alcotest.(option string) "not trusted" None (Diskcache.find c2 "k1");
  check Alcotest.int "entries dropped" 0 (Diskcache.entries c2)

let test_diskcache_mem_validates () =
  let dir = temp_dir () in
  let c = Diskcache.open_dir ~version:"t1" dir in
  Diskcache.add c ~key:"k1" "payload";
  check Alcotest.bool "mem sees valid entry" true (Diskcache.mem c "k1");
  check Alcotest.bool "mem misses absent key" false (Diskcache.mem c "nope");
  (* The regression: mem used to be a bare Sys.file_exists, so a
     corrupted entry counted as present while find returned None. Both
     must go through the same envelope validation. *)
  List.iter
    (fun path ->
      let oc = open_out_bin path in
      output_string oc "corrupted bytes";
      close_out oc)
    (entry_files dir);
  check Alcotest.bool "mem rejects corrupted entry" false
    (Diskcache.mem c "k1");
  check Alcotest.(option string) "find agrees" None (Diskcache.find c "k1")

let test_diskcache_tmp_sweep () =
  let dir = temp_dir () in
  let c = Diskcache.open_dir ~version:"t1" dir in
  Diskcache.add c ~key:"k1" "payload";
  (* A crash between temp-file write and rename leaves .tmp-* orphans;
     open_dir must sweep them. *)
  List.iter
    (fun name ->
      let oc = open_out_bin (Filename.concat dir name) in
      output_string oc "half-written";
      close_out oc)
    [ ".tmp-123-abc.v"; ".tmp-999-xyz.v" ];
  let c2 = Diskcache.open_dir ~version:"t1" dir in
  let leftovers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f >= 5 && String.sub f 0 5 = ".tmp-")
  in
  check Alcotest.(list string) "orphaned temp files swept" [] leftovers;
  check Alcotest.(option string) "real entries survive the sweep"
    (Some "payload") (Diskcache.find c2 "k1")

let test_diskcache_pre_codec_upgrade () =
  (* A directory written by the pre-codec (Marshal-envelope) format has
     a different INDEX magic; opening it must wipe wholesale rather than
     attempt to read Marshal bytes. *)
  let dir = temp_dir () in
  let oc = open_out_bin (Filename.concat dir "INDEX") in
  output_string oc "confmask-diskcache 1\nt1/ocaml-5.1.1\n";
  close_out oc;
  let oc = open_out_bin (Filename.concat dir "0123456789abcdef.v") in
  output_string oc (Marshal.to_string ("k1", "old payload") []);
  close_out oc;
  let c = Diskcache.open_dir ~version:"t1" dir in
  check Alcotest.int "old-format dir wiped" 0 (Diskcache.entries c);
  check Alcotest.int "old entry files removed" 0
    (List.length (entry_files dir));
  check Alcotest.(option string) "no stale payload" None
    (Diskcache.find c "k1")

(* -------------------- Codec -------------------- *)

let test_codec_roundtrip () =
  List.iter
    (fun payload ->
      let raw = Codec.encode ~version:"v1" ~key:"some key" payload in
      check Alcotest.(option string) "roundtrip" (Some payload)
        (Codec.decode ~version:"v1" ~key:"some key" raw);
      check
        Alcotest.(option (triple string string string))
        "decode_any"
        (Some ("v1", "some key", payload))
        (Codec.decode_any raw))
    [ ""; "x"; "payload with \x00 binary \xff bytes"; String.make 100_000 'z' ]

let test_codec_mismatches () =
  let raw = Codec.encode ~version:"v1" ~key:"k" "payload" in
  check Alcotest.(option string) "wrong version" None
    (Codec.decode ~version:"v2" ~key:"k" raw);
  check Alcotest.(option string) "wrong key" None
    (Codec.decode ~version:"v1" ~key:"other" raw);
  check Alcotest.(option string) "trailing garbage" None
    (Codec.decode ~version:"v1" ~key:"k" (raw ^ "x"));
  check Alcotest.(option string) "wrong magic" None
    (Codec.decode ~version:"v1" ~key:"k" ("XMCODEC1" ^ String.sub raw 8 (String.length raw - 8)));
  check Alcotest.(option string) "empty input" None
    (Codec.decode ~version:"v1" ~key:"k" "");
  check Alcotest.(option string) "marshal bytes" None
    (Codec.decode ~version:"v1" ~key:"k" (Marshal.to_string ("k", "payload") []))

let test_codec_truncation_exhaustive () =
  (* Every proper prefix of a valid envelope must decode to None without
     raising — truncation at any byte is a detected miss. *)
  let raw = Codec.encode ~version:"v1" ~key:"key" "some payload bytes" in
  for len = 0 to String.length raw - 1 do
    match Codec.decode ~version:"v1" ~key:"key" (String.sub raw 0 len) with
    | None -> ()
    | Some _ -> Alcotest.failf "truncation at %d decoded" len
  done

let test_codec_bitflip_exhaustive () =
  (* Every single-bit corruption anywhere in the envelope — header,
     lengths, version, key, payload, digest — must be a miss. *)
  let raw = Codec.encode ~version:"v1" ~key:"key" "some payload bytes" in
  for i = 0 to String.length raw - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string raw in
      Bytes.set b i (Char.chr (Char.code raw.[i] lxor (1 lsl bit)));
      match Codec.decode ~version:"v1" ~key:"key" (Bytes.to_string b) with
      | None -> ()
      | Some _ -> Alcotest.failf "bit flip at byte %d bit %d decoded" i bit
    done
  done

(* -------------------- Json -------------------- *)

let test_json_parse_basics () =
  let p s = Result.get_ok (Json.parse s) in
  check Alcotest.bool "null" true (p "null" = Json.Null);
  check Alcotest.bool "true" true (p "true" = Json.Bool true);
  check Alcotest.(option int) "int" (Some 42) (Json.int (p " 42 "));
  check Alcotest.(option (float 1e-9)) "float" (Some (-3.5))
    (Json.num (p "-3.5"));
  check Alcotest.(option string) "string escapes" (Some "a\"b\\c\n\t/ \x01")
    (Json.str (p {|"a\"b\\c\n\t\/ "|}));
  check Alcotest.bool "array" true
    (p "[1, [], [2]]" = Json.Arr [ Json.Num 1.0; Json.Arr []; Json.Arr [ Json.Num 2.0 ] ]);
  check Alcotest.(option int) "nested member" (Some 7)
    (Option.bind
       (Option.bind (Json.member "a" (p {|{"a": {"b": 7}}|})) (Json.member "b"))
       Json.int)

let test_json_parse_rejects () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "expected parse failure for %S" s
      | Error _ -> ())
    [
      ""; "nul"; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "1 2"; "{'a': 1}";
      "[1] trailing"; "\"bad \\x escape\""; "+1"; "01"; "--2"; "{1: 2}";
    ]

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("op", Json.Str "job");
        ("n", Json.Num 3.0);
        ("f", Json.Num 0.25);
        ("ok", Json.Bool true);
        ("none", Json.Null);
        ("xs", Json.Arr [ Json.Str "a\"\n\\b"; Json.Num (-1.0) ]);
        ("nested", Json.Obj [ ("k", Json.Str "v") ]);
      ]
  in
  check Alcotest.bool "print-parse roundtrip" true
    (Result.get_ok (Json.parse (Json.to_string v)) = v);
  check Alcotest.string "integers print without a fraction"
    {|{"n":3,"f":0.25}|}
    (Json.to_string (Json.Obj [ ("n", Json.Num 3.0); ("f", Json.Num 0.25) ]))

(* -------------------- Clock -------------------- *)

let test_clock_monotonic () =
  let t0 = Clock.now () in
  let a = ref 0 in
  for i = 1 to 10_000 do
    a := !a + i
  done;
  let dt = Clock.elapsed t0 in
  check Alcotest.bool "elapsed never negative" true (dt >= 0.0);
  check Alcotest.bool "elapsed bounded (not wall-clock garbage)" true
    (dt < 60.0);
  let x = Clock.now () and y = Clock.now () in
  check Alcotest.bool "now is non-decreasing" true (y >= x)

(* -------------------- Rng -------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs r = List.init 20 (fun _ -> Rng.int r 1000) in
  check Alcotest.(list int) "same seed, same stream" (xs a) (xs b)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int r 13 in
    if x < 0 || x >= 13 then Alcotest.failf "out of bounds %d" x;
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of bounds %f" f
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create 3 in
  let xs = List.init 50 Fun.id in
  let ys = Rng.shuffle r xs in
  check Alcotest.(list int) "permutation" xs (List.sort Int.compare ys)

let test_rng_chi_square () =
  (* Sanity check on [Rng.int]'s uniformity after the rejection-sampling
     change. Deterministic under the fixed seed: df = 12, and the 99.99th
     percentile of chi^2(12) is ~39.1, so 45 is a generous bound that only
     a genuinely skewed generator would exceed. *)
  List.iter
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let n = 2000 * bound in
      let counts = Array.make bound 0 in
      for _ = 1 to n do
        let x = Rng.int r bound in
        counts.(x) <- counts.(x) + 1
      done;
      let expected = float_of_int n /. float_of_int bound in
      let chi2 =
        Array.fold_left
          (fun acc o ->
            let d = float_of_int o -. expected in
            acc +. (d *. d /. expected))
          0.0 counts
      in
      if chi2 > 45.0 then
        Alcotest.failf "chi-square too high for seed %d bound %d: %.2f" seed bound chi2)
    [ (42, 13); (7, 13); (2024, 13) ]

(* -------------------- Graph -------------------- *)

let test_graph_basic () =
  let g = Graph.of_edges [ ("a", "b"); ("b", "c"); ("a", "b") ] in
  check Alcotest.int "nodes" 3 (Graph.num_nodes g);
  check Alcotest.int "edges (dedup)" 2 (Graph.num_edges g);
  check Alcotest.bool "edge both ways" true
    (Graph.mem_edge "a" "b" g && Graph.mem_edge "b" "a" g);
  check Alcotest.int "degree" 2 (Graph.degree "b" g)

let test_graph_no_self_loop () =
  let g = Graph.add_edge "a" "a" Graph.empty in
  check Alcotest.int "self loop ignored" 0 (Graph.num_edges g);
  check Alcotest.bool "node added" true (Graph.mem_node "a" g)

let test_graph_remove () =
  let g = Graph.of_edges [ ("a", "b"); ("b", "c") ] in
  let g = Graph.remove_edge "a" "b" g in
  check Alcotest.bool "removed" false (Graph.mem_edge "a" "b" g);
  check Alcotest.int "one left" 1 (Graph.num_edges g)

let test_graph_edges_sorted () =
  let g = Graph.of_edges [ ("c", "a"); ("b", "a") ] in
  check
    Alcotest.(list (pair string string))
    "edges canonical" [ ("a", "b"); ("a", "c") ] (Graph.edges g)

(* -------------------- Gmetrics -------------------- *)

let triangle_plus_tail = Graph.of_edges [ ("a", "b"); ("b", "c"); ("a", "c"); ("c", "d") ]

let test_degree_histogram () =
  check
    Alcotest.(list (pair int int))
    "histogram" [ (1, 1); (2, 2); (3, 1) ]
    (Gmetrics.degree_histogram triangle_plus_tail)

let test_min_degree_group () =
  check Alcotest.int "min group" 1 (Gmetrics.min_degree_group triangle_plus_tail);
  let square = Graph.of_edges [ ("a", "b"); ("b", "c"); ("c", "d"); ("d", "a") ] in
  check Alcotest.int "regular graph" 4 (Gmetrics.min_degree_group square);
  check Alcotest.bool "k-anonymous" true (Gmetrics.is_k_degree_anonymous 4 square);
  check Alcotest.bool "not 5-anonymous" false (Gmetrics.is_k_degree_anonymous 5 square)

let test_clustering () =
  let triangle = Graph.of_edges [ ("a", "b"); ("b", "c"); ("a", "c") ] in
  check (Alcotest.float 1e-9) "triangle CC" 1.0 (Gmetrics.clustering_coefficient triangle);
  let path = Graph.of_edges [ ("a", "b"); ("b", "c") ] in
  check (Alcotest.float 1e-9) "path CC" 0.0 (Gmetrics.clustering_coefficient path);
  (* a and b participate in a triangle, c has CC 1, d has degree 1 *)
  let cc = Gmetrics.clustering_coefficient triangle_plus_tail in
  check (Alcotest.float 1e-9) "mixed CC" ((1.0 +. 1.0 +. (1.0 /. 3.0) +. 0.0) /. 4.0) cc

let test_bfs () =
  let d = Gmetrics.bfs_distances triangle_plus_tail "a" in
  check Alcotest.(option int) "dist d" (Some 2) (Graph.Smap.find_opt "d" d);
  check Alcotest.(option int) "dist a" (Some 0) (Graph.Smap.find_opt "a" d)

let test_components () =
  let g = Graph.of_edges [ ("a", "b"); ("c", "d") ] in
  check Alcotest.int "two components" 2 (List.length (Gmetrics.components g));
  check Alcotest.bool "not connected" false (Gmetrics.connected g);
  check Alcotest.bool "connected" true (Gmetrics.connected triangle_plus_tail)

let test_dijkstra () =
  let g = Graph.of_edges [ ("a", "b"); ("b", "c"); ("a", "c") ] in
  let weight u v =
    match (u, v) with
    | "a", "c" | "c", "a" -> 10
    | _ -> 1
  in
  let d = Gmetrics.dijkstra g ~weight "a" in
  check Alcotest.(option int) "via b" (Some 2) (Graph.Smap.find_opt "c" d)

(* Hand-computed fixtures for the metrics the crucible oracles lean on. *)

let star =
  (* hub h with 4 leaves *)
  Graph.of_edges [ ("h", "l1"); ("h", "l2"); ("h", "l3"); ("h", "l4") ]

let two_cliques =
  (* K3 on a,b,c and K4 on w,x,y,z — disjoint *)
  Graph.of_edges
    [
      ("a", "b"); ("b", "c"); ("a", "c");
      ("w", "x"); ("w", "y"); ("w", "z"); ("x", "y"); ("x", "z"); ("y", "z");
    ]

let test_gmetrics_star () =
  (* Leaves have degree 1 (local CC 0 by convention); the hub's neighbors
     share no edges, so every local coefficient is 0. *)
  check (Alcotest.float 1e-9) "star CC" 0.0 (Gmetrics.clustering_coefficient star);
  check (Alcotest.float 1e-9) "hub local CC" 0.0 (Gmetrics.local_clustering star "h");
  check Alcotest.bool "connected" true (Gmetrics.connected star);
  check Alcotest.int "one component" 1 (List.length (Gmetrics.components star));
  check
    Alcotest.(list (pair int int))
    "histogram" [ (1, 4); (4, 1) ]
    (Gmetrics.degree_histogram star);
  check Alcotest.int "min degree group" 1 (Gmetrics.min_degree_group star)

let test_gmetrics_two_cliques () =
  (* Every node's neighborhood is complete, so each local coefficient is
     exactly 1 even though the graph is disconnected. *)
  check (Alcotest.float 1e-9) "cliques CC" 1.0 (Gmetrics.clustering_coefficient two_cliques);
  check Alcotest.bool "not connected" false (Gmetrics.connected two_cliques);
  check
    Alcotest.(list (list string))
    "components sorted" [ [ "a"; "b"; "c" ]; [ "w"; "x"; "y"; "z" ] ]
    (Gmetrics.components two_cliques);
  check Alcotest.bool "2-degree-anonymous" true
    (Gmetrics.is_k_degree_anonymous 2 two_cliques);
  check Alcotest.bool "not 4-anonymous" false
    (Gmetrics.is_k_degree_anonymous 4 two_cliques)

let test_gmetrics_triangle_fixture () =
  let triangle = Graph.of_edges [ ("a", "b"); ("b", "c"); ("a", "c") ] in
  check (Alcotest.float 1e-9) "triangle CC" 1.0 (Gmetrics.clustering_coefficient triangle);
  check Alcotest.bool "connected" true (Gmetrics.connected triangle);
  check
    Alcotest.(list (list string))
    "single component" [ [ "a"; "b"; "c" ] ]
    (Gmetrics.components triangle);
  check Alcotest.int "min degree group is all" 3 (Gmetrics.min_degree_group triangle)

let test_pearson () =
  let xs = [ (1.0, 2.0); (2.0, 4.0); (3.0, 6.0) ] in
  check (Alcotest.float 1e-9) "perfect" 1.0 (Gmetrics.pearson xs);
  let ys = [ (1.0, 3.0); (2.0, 2.0); (3.0, 1.0) ] in
  check (Alcotest.float 1e-9) "anti" (-1.0) (Gmetrics.pearson ys);
  check Alcotest.bool "constant is nan" true
    (Float.is_nan (Gmetrics.pearson [ (1.0, 1.0); (2.0, 1.0) ]))

(* -------------------- interner & heap -------------------- *)

let test_interner_basic () =
  let it = Interner.create ~capacity:1 () in
  check Alcotest.int "first id" 0 (Interner.intern it "a");
  check Alcotest.int "second id" 1 (Interner.intern it "b");
  check Alcotest.int "repeat keeps id" 0 (Interner.intern it "a");
  check Alcotest.int "length" 2 (Interner.length it);
  check Alcotest.(option int) "find" (Some 1) (Interner.find it "b");
  check Alcotest.(option int) "find missing" None (Interner.find it "c");
  check Alcotest.string "name" "b" (Interner.name it 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Interner.name: id 2 out of range") (fun () ->
      ignore (Interner.name it 2))

let test_heap_basic () =
  let h = Heap.create ~capacity:1 () in
  check Alcotest.bool "starts empty" true (Heap.is_empty h);
  List.iter
    (fun (p, v) -> Heap.push h ~prio:p v)
    [ (5, 50); (1, 10); (3, 30); (1, 11) ];
  check Alcotest.int "size" 4 (Heap.size h);
  (match (Heap.pop h, Heap.pop h) with
  | Some (1, _), Some (1, _) -> ()
  | _ -> Alcotest.fail "minimum-priority entries must pop first");
  check Alcotest.(option (pair int int)) "third" (Some (3, 30)) (Heap.pop h);
  check Alcotest.(option (pair int int)) "fourth" (Some (5, 50)) (Heap.pop h);
  check Alcotest.(option (pair int int)) "drained" None (Heap.pop h);
  Heap.push h ~prio:2 20;
  Heap.clear h;
  check Alcotest.bool "clear empties" true (Heap.is_empty h)

(* -------------------- qcheck properties -------------------- *)

let prefix_gen =
  QCheck2.Gen.(
    map2
      (fun addr len -> Prefix.v (Ipv4.of_int addr) len)
      (int_bound 0xFFFFFFF) (int_bound 32))

let prop_prefix_roundtrip =
  QCheck2.Test.make ~name:"prefix string roundtrip" ~count:500 prefix_gen (fun p ->
      Prefix.equal p (Prefix.of_string_exn (Prefix.to_string p)))

let prop_prefix_mem_network =
  QCheck2.Test.make ~name:"network address is member" ~count:500 prefix_gen
    (fun p -> Prefix.mem (Prefix.network p) p)

let prop_shuffle_preserves =
  QCheck2.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck2.Gen.(pair int (small_list int))
    (fun (seed, xs) ->
      let r = Rng.create seed in
      List.sort Int.compare (Rng.shuffle r xs) = List.sort Int.compare xs)

let prop_graph_degree_sum =
  QCheck2.Test.make ~name:"sum of degrees = 2|E|" ~count:200
    QCheck2.Gen.(small_list (pair (int_bound 20) (int_bound 20)))
    (fun pairs ->
      let edges = List.map (fun (a, b) -> (string_of_int a, string_of_int b)) pairs in
      let g = Graph.of_edges edges in
      let sum = Graph.fold_nodes (fun v acc -> acc + Graph.degree v g) g 0 in
      sum = 2 * Graph.num_edges g)

let prop_clustering_range =
  QCheck2.Test.make ~name:"clustering coefficient in [0,1]" ~count:200
    QCheck2.Gen.(small_list (pair (int_bound 12) (int_bound 12)))
    (fun pairs ->
      let edges = List.map (fun (a, b) -> (string_of_int a, string_of_int b)) pairs in
      let cc = Gmetrics.clustering_coefficient (Graph.of_edges edges) in
      cc >= 0.0 && cc <= 1.0)

let prop_interner_bijection =
  (* Ids are dense, assigned by first occurrence, and invert exactly:
     the same insertion sequence always yields the same table. *)
  QCheck2.Test.make ~name:"interner bijection and insertion-order ids"
    ~count:300
    QCheck2.Gen.(small_list (string_size (int_bound 6)))
    (fun names ->
      let it = Interner.create () in
      let ids = List.map (Interner.intern it) names in
      let firsts =
        List.fold_left
          (fun acc n -> if List.mem n acc then acc else acc @ [ n ])
          [] names
      in
      Interner.length it = List.length firsts
      && List.for_all2
           (fun n id ->
             Interner.name it id = n && Interner.find it n = Some id)
           names ids
      && List.for_all2
           (fun n id -> Interner.find_exn it n = id)
           firsts
           (List.init (List.length firsts) Fun.id))

let prop_heap_pqueue_agree =
  (* The mutable heap drains in the same priority order as the
     persistent pairing-heap facade and preserves the pushed multiset. *)
  QCheck2.Test.make ~name:"heap pops sorted, agreeing with Pqueue" ~count:300
    QCheck2.Gen.(small_list (pair (int_bound 1000) (int_bound 1000)))
    (fun entries ->
      let h = Heap.create () in
      List.iter (fun (p, v) -> Heap.push h ~prio:p v) entries;
      let rec drain acc =
        match Heap.pop h with
        | None -> List.rev acc
        | Some pv -> drain (pv :: acc)
      in
      let popped = drain [] in
      let prios = List.map fst popped in
      List.sort compare popped = List.sort compare entries
      && prios = List.sort compare prios
      &&
      let pq =
        List.fold_left
          (fun pq (p, v) -> Pqueue.insert p v pq)
          Pqueue.empty entries
      in
      let rec pdrain acc pq =
        match Pqueue.pop pq with
        | None -> List.rev acc
        | Some (p, _, pq) -> pdrain (p :: acc) pq
      in
      pdrain [] pq = prios)

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec roundtrip over arbitrary bytes" ~count:300
    QCheck2.Gen.(triple (string_size (int_bound 16)) (string_size (int_bound 32))
                   (string_size (int_bound 2000)))
    (fun (version, key, payload) ->
      Codec.decode ~version ~key (Codec.encode ~version ~key payload)
      = Some payload)

let prop_codec_garbage_never_raises =
  (* Decode is total: arbitrary bytes — including ones that start with
     the magic — are a miss, never an exception. *)
  QCheck2.Test.make ~name:"codec decode of garbage is None, never raises"
    ~count:500
    QCheck2.Gen.(pair bool (string_size (int_bound 200)))
    (fun (prefix_magic, junk) ->
      let raw = if prefix_magic then Codec.magic ^ junk else junk in
      match Codec.decode ~version:"v1" ~key:"k" raw with
      | None -> true
      | Some _ ->
          (* Only a byte-exact re-encoding could legitimately decode. *)
          raw = Codec.encode ~version:"v1" ~key:"k" (Option.get (Codec.decode ~version:"v1" ~key:"k" raw)))

let prop_json_roundtrip =
  let rec gen_value depth =
    QCheck2.Gen.(
      if depth = 0 then
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun n -> Json.Num (float_of_int n)) (int_bound 1_000_000);
            map (fun s -> Json.Str s) (string_size (int_bound 12));
          ]
      else
        oneof
          [
            map (fun s -> Json.Str s) (string_size (int_bound 12));
            map (fun xs -> Json.Arr xs)
              (list_size (int_bound 4) (gen_value (depth - 1)));
            map
              (fun kvs ->
                (* Duplicate keys would round-trip ambiguously. *)
                let seen = Hashtbl.create 8 in
                Json.Obj
                  (List.filter
                     (fun (k, _) ->
                       if Hashtbl.mem seen k then false
                       else (Hashtbl.add seen k (); true))
                     kvs))
              (list_size (int_bound 4)
                 (pair (string_size (int_bound 6)) (gen_value (depth - 1))));
          ])
  in
  QCheck2.Test.make ~name:"json print-parse roundtrip" ~count:300
    (gen_value 3)
    (fun v -> Json.parse (Json.to_string v) = Ok v)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_prefix_roundtrip; prop_prefix_mem_network; prop_shuffle_preserves;
      prop_graph_degree_sum; prop_clustering_range;
      prop_interner_bijection; prop_heap_pqueue_agree;
      prop_codec_roundtrip; prop_codec_garbage_never_raises;
      prop_json_roundtrip ]

let () =
  Alcotest.run "netcore"
    [
      ( "ipv4",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "octets" `Quick test_ipv4_octets;
          Alcotest.test_case "malformed" `Quick test_ipv4_bad;
          Alcotest.test_case "decimal octets only" `Quick test_ipv4_decimal_only;
          Alcotest.test_case "add wraps" `Quick test_ipv4_add_wraps;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "canonicalization" `Quick test_prefix_canonical;
          Alcotest.test_case "membership" `Quick test_prefix_mem;
          Alcotest.test_case "subset" `Quick test_prefix_subset;
          Alcotest.test_case "masks" `Quick test_prefix_masks;
          Alcotest.test_case "host /32" `Quick test_prefix_32;
          Alcotest.test_case "allocator avoids collisions" `Quick test_alloc_avoids;
          Alcotest.test_case "allocator exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "allocator exhaustion probe bound" `Quick
            test_alloc_exhaustion_probe_bound;
          Alcotest.test_case "allocator probe bound" `Quick test_alloc_probe_bound;
        ] );
      ( "diskcache",
        [
          Alcotest.test_case "roundtrip and reopen" `Quick test_diskcache_roundtrip;
          Alcotest.test_case "telemetry counters" `Quick test_diskcache_counters;
          Alcotest.test_case "corrupted entry is a miss" `Quick
            test_diskcache_corrupted_entry;
          Alcotest.test_case "version mismatch wipes" `Quick
            test_diskcache_version_mismatch;
          Alcotest.test_case "mem validates like find" `Quick
            test_diskcache_mem_validates;
          Alcotest.test_case "orphaned temp files swept" `Quick
            test_diskcache_tmp_sweep;
          Alcotest.test_case "pre-codec directory wiped" `Quick
            test_diskcache_pre_codec_upgrade;
          Alcotest.test_case "corrupted index distrusted" `Quick
            test_diskcache_corrupted_index;
        ] );
      ( "compiled-core",
        [
          Alcotest.test_case "interner basics" `Quick test_interner_basic;
          Alcotest.test_case "heap basics" `Quick test_heap_basic;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "mismatches are misses" `Quick
            test_codec_mismatches;
          Alcotest.test_case "every truncation is a miss" `Quick
            test_codec_truncation_exhaustive;
          Alcotest.test_case "every single-bit flip is a miss" `Quick
            test_codec_bitflip_exhaustive;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse rejects malformed" `Quick
            test_json_parse_rejects;
          Alcotest.test_case "print-parse roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "chi-square uniformity" `Quick test_rng_chi_square;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basic;
          Alcotest.test_case "no self loops" `Quick test_graph_no_self_loop;
          Alcotest.test_case "remove edge" `Quick test_graph_remove;
          Alcotest.test_case "edges canonical" `Quick test_graph_edges_sorted;
        ] );
      ( "gmetrics",
        [
          Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
          Alcotest.test_case "min degree group" `Quick test_min_degree_group;
          Alcotest.test_case "clustering coefficient" `Quick test_clustering;
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "dijkstra" `Quick test_dijkstra;
          Alcotest.test_case "star fixture" `Quick test_gmetrics_star;
          Alcotest.test_case "two disjoint cliques fixture" `Quick test_gmetrics_two_cliques;
          Alcotest.test_case "triangle fixture" `Quick test_gmetrics_triangle_fixture;
          Alcotest.test_case "pearson" `Quick test_pearson;
        ] );
      ("properties", qsuite);
    ]
