(* Tests for the crucible harness itself: generator determinism and
   validity, corpus round-trips, replay of the committed regression
   corpus, a fuzz smoke run — and the key self-check, that an injected
   routing fault is caught by a differential oracle and shrunk to a
   small repro that replays from its corpus file. *)

open Netcore
module Netspec = Netgen.Netspec

let gen_deterministic () =
  let a = Crucible.Gen.spec ~seed:42 () in
  let b = Crucible.Gen.spec ~seed:42 () in
  Alcotest.(check bool) "same seed, same spec" true (a = b);
  let c = Crucible.Gen.spec ~seed:43 () in
  Alcotest.(check bool) "different seed, different spec" true (a <> c)

let spec_graph (s : Netspec.t) =
  let g = List.fold_left (fun g r -> Graph.add_node r g) Graph.empty s.routers in
  List.fold_left (fun g (u, v, _) -> Graph.add_edge u v g) g s.links

let gen_valid () =
  for seed = 0 to 49 do
    let s = Crucible.Gen.spec ~seed () in
    let n = List.length s.Netspec.routers in
    if n < 3 || n > 12 then
      Alcotest.failf "seed %d: %d routers out of bounds" seed n;
    if not (Gmetrics.connected (spec_graph s)) then
      Alcotest.failf "seed %d: disconnected router graph" seed;
    if s.hosts = [] then Alcotest.failf "seed %d: no hosts" seed;
    (* AS partitions must cover every router or none. *)
    if s.asn <> [] && List.length s.asn <> n then
      Alcotest.failf "seed %d: partial AS assignment" seed
  done

let corpus_roundtrip () =
  for seed = 0 to 9 do
    let case =
      {
        Crucible.Corpus.c_name = Printf.sprintf "rt%d" seed;
        c_seed = seed;
        c_oracle = (if seed mod 2 = 0 then Some "rename" else None);
        c_spec = Crucible.Gen.spec ~seed ();
      }
    in
    let text = Crucible.Corpus.to_string case in
    match Crucible.Corpus.of_string text with
    | Error m -> Alcotest.failf "seed %d: %s" seed m
    | Ok case' ->
        (* The serialization is canonical: parsing and re-printing is the
           identity on the text, and the replay-relevant fields survive.
           (Structural case equality is too strict — the spec's own name
           is not serialized, and the AS list is normalized to router
           order.) *)
        if Crucible.Corpus.to_string case' <> text then
          Alcotest.failf "seed %d: corpus text did not round-trip" seed;
        if case'.c_seed <> seed || case'.c_oracle <> case.c_oracle then
          Alcotest.failf "seed %d: replay fields did not round-trip" seed;
        List.iter
          (fun r ->
            if
              Netspec.as_of case'.c_spec r <> Netspec.as_of case.c_spec r
            then Alcotest.failf "seed %d: AS of %s did not round-trip" seed r)
          case.c_spec.routers
  done

let corpus_rejects_invalid () =
  let bad s =
    match Crucible.Corpus.of_string s with
    | Ok _ -> Alcotest.failf "accepted invalid case: %s" (String.escaped s)
    | Error _ -> ()
  in
  bad "name x\nseed 0\nigp ospf\nrouter a\nlink a b 10\n";
  bad "name x\nseed 0\nigp ospf\nrouter a as 1\nrouter b\nlink a b 10\n";
  bad "name x\nseed 0\nigp nonsense\nrouter a\nrouter b\nlink a b 10\n"

(* Replays every committed test/corpus/*.case — each one is a minimized
   repro of a past defect (or a structural regression) that must stay
   green deterministically. *)
let corpus_regressions () =
  let cases = Crucible.Corpus.load_dir "corpus" in
  if cases = [] then Alcotest.fail "test/corpus is empty or missing";
  List.iter
    (fun (path, case) ->
      match Crucible.Runner.replay ~oracles:Crucible.Oracle.all case with
      | [] -> ()
      | f :: _ ->
          Alcotest.failf "%s: oracle %s failed: %s" path
            f.Crucible.Runner.f_oracle f.f_message)
    cases

(* A short end-to-end fuzz run; CI's fuzz-smoke job covers larger ones. *)
let fuzz_smoke () =
  let gen = { Crucible.Gen.default with max_routers = 8; max_hosts = 4 } in
  let outcome =
    Crucible.Runner.run ~oracles:Crucible.Oracle.all ~gen ~seed:0 ~cases:5 ()
  in
  Alcotest.(check int) "cases run" 5 outcome.cases;
  match outcome.failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "seed %d oracle %s: %s" f.Crucible.Runner.f_seed
        f.f_oracle f.f_message

(* -------------------- fault injection -------------------- *)

(* An intentionally broken engine stand-in: a differential oracle that
   compares the real simulation against FIBs with every BGP-learned
   route silently dropped. The harness must detect the divergence on
   generated nets and shrink the repro to a handful of routers. *)
let faulty_engine_oracle =
  {
    Crucible.Oracle.name = "injected_fault";
    doc = "differential check against an engine that loses BGP routes";
    check =
      (fun ~seed:_ spec ->
        let snap = Routing.Simulate.run_exn (Netgen.Emit.emit spec) in
        let drops_route _ fib =
          List.exists
            (fun (r : Routing.Fib.route) ->
              r.rt_proto = Routing.Fib.Ebgp || r.rt_proto = Routing.Fib.Ibgp)
            (Routing.Fib.routes fib)
        in
        if Routing.Device.Smap.exists drops_route snap.fibs then
          Crucible.Oracle.Fail "faulty engine dropped BGP routes"
        else Crucible.Oracle.Pass);
  }

let fault_caught_and_shrunk () =
  (* bgp_fraction 1.0: every net of >= 4 routers is AS-partitioned, so
     the injected fault must surface within a few seeds. *)
  let params = { Crucible.Gen.default with bgp_fraction = 1.0 } in
  let o = faulty_engine_oracle in
  let rec find seed =
    if seed > 50 then Alcotest.fail "injected fault never triggered"
    else
      let spec = Crucible.Gen.spec ~params ~seed () in
      match Crucible.Oracle.run o ~seed spec with
      | Fail _ -> (seed, spec)
      | Pass -> find (seed + 1)
  in
  let seed, spec = find 0 in
  let still_fails s =
    match Crucible.Oracle.run o ~seed s with Fail _ -> true | Pass -> false
  in
  let minimized, _steps = Crucible.Shrink.spec ~still_fails spec in
  let n = List.length minimized.Netspec.routers in
  if n > 6 then Alcotest.failf "minimized repro still has %d routers" n;
  Alcotest.(check bool) "minimized repro still fails" true (still_fails minimized);
  Alcotest.(check bool) "minimized spec stays connected" true
    (Gmetrics.connected (spec_graph minimized));
  (* The minimized repro must reproduce from its corpus file. *)
  let dir = Filename.temp_file "crucible" "corpus" in
  Sys.remove dir;
  let path =
    Crucible.Corpus.save ~dir
      { c_name = "fault"; c_seed = seed; c_oracle = None; c_spec = minimized }
  in
  match Crucible.Corpus.load_file path with
  | Error m -> Alcotest.fail m
  | Ok case ->
      let failures = Crucible.Runner.replay ~oracles:[ o ] case in
      Alcotest.(check int) "replay reproduces the failure" 1
        (List.length failures)

let () =
  Alcotest.run "crucible"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick gen_deterministic;
          Alcotest.test_case "valid and connected" `Quick gen_valid;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "round-trip" `Quick corpus_roundtrip;
          Alcotest.test_case "rejects invalid specs" `Quick corpus_rejects_invalid;
          Alcotest.test_case "committed regressions replay" `Quick
            corpus_regressions;
        ] );
      ( "harness",
        [
          Alcotest.test_case "fuzz smoke" `Quick fuzz_smoke;
          Alcotest.test_case "injected fault caught and shrunk" `Quick
            fault_caught_and_shrunk;
        ] );
    ]
