(* The red-team suite: attack interface conventions, the individual
   attacks against real workflow outputs, and the Audit glue (ground
   truth inference, deterministic records). *)

let check = Alcotest.check

let find_score name scores =
  match
    List.find_opt
      (fun (s : Redteam.Attack.score) -> String.equal s.attack name)
      scores
  with
  | Some s -> s
  | None -> Alcotest.failf "attack %s missing from the report" name

(* ---- scoring conventions ---- *)

let test_score_conventions () =
  let s = Redteam.Attack.score ~attack:"x" ~claims:0 ~hits:0 ~relevant:0 () in
  check Alcotest.(float 0.0) "no claims: precision 1" 1.0 s.precision;
  check Alcotest.(float 0.0) "nothing to find: recall 1" 1.0 s.recall;
  let s = Redteam.Attack.score ~attack:"x" ~claims:4 ~hits:1 ~relevant:2 () in
  check Alcotest.(float 1e-9) "precision" 0.25 s.precision;
  check Alcotest.(float 1e-9) "recall" 0.5 s.recall

let test_edge_hits () =
  let truth = [ ("b", "a"); ("c", "d"); ("e", "f") ] in
  let claimed = [ ("a", "b"); ("d", "c"); ("x", "y"); ("a", "b") ] in
  check Alcotest.int "canonicalized intersection" 2
    (Redteam.Attack.edge_hits ~truth ~claimed);
  check Alcotest.int "empty truth" 0
    (Redteam.Attack.edge_hits ~truth:[] ~claimed);
  check Alcotest.int "empty claims" 0
    (Redteam.Attack.edge_hits ~truth ~claimed:[])

(* ---- signatures and re-identification ---- *)

let test_reid_signature () =
  let open Netcore in
  let g =
    Graph.of_edges [ ("a", "b"); ("a", "c"); ("a", "d"); ("b", "c") ]
  in
  let d, nd = Redteam.Reid.signature g "a" in
  check Alcotest.int "degree" 3 d;
  check Alcotest.(list int) "neighbor degrees sorted desc" [ 2; 2; 1 ] nd;
  check Alcotest.int "identical signatures at distance 0" 0
    (Redteam.Reid.distance (d, nd) (d, nd));
  check Alcotest.bool "own-degree term dominates" true
    (Redteam.Reid.distance (3, [ 1 ]) (4, [ 1 ])
    > Redteam.Reid.distance (3, [ 1 ]) (3, [ 4 ]))

(* ---- address attacks ---- *)

let test_branch_depths () =
  (* 10.0.0.{1,2} share 30+ bits; 10.1.0.1 branches off higher up. The
     multiset must be invariant under a Pan map. *)
  let addrs =
    List.map
      (fun s -> Netcore.Ipv4.to_int (Netcore.Ipv4.of_string_exn s))
      [ "10.0.0.1"; "10.0.0.2"; "10.1.0.1" ]
  in
  let h = Redteam.Addrs.branch_depths (List.sort_uniq compare addrs) in
  check Alcotest.int "two adjacent pairs" 2 (Array.fold_left ( + ) 0 h);
  let key = Pii.Pan.key_of_int 9 in
  let mapped =
    List.sort_uniq compare
      (List.map
         (fun a ->
           Netcore.Ipv4.to_int (Pii.Pan.addr key (Netcore.Ipv4.of_int a)))
         addrs)
  in
  check
    Alcotest.(array int)
    "branch-depth multiset invariant under Pan" h
    (Redteam.Addrs.branch_depths mapped)

(* ---- suite registry ---- *)

let test_registry () =
  check
    Alcotest.(list string)
    "registry order"
    [ "degree_reid"; "filter_pattern"; "no_traffic"; "prefix_structure";
      "key_bruteforce" ]
    Redteam.Suite.names;
  check Alcotest.bool "find known" true
    (Redteam.Suite.find "key_bruteforce" <> None);
  check Alcotest.bool "find unknown" true (Redteam.Suite.find "nope" = None)

(* ---- the suite against real workflow outputs ---- *)

let run_workflow ?pii_key ?(pii = false) () =
  let configs = Netgen.Nets.configs (Netgen.Nets.find "A") in
  let params =
    { Confmask.Workflow.default_params with k_r = 2; k_h = 2; pii; pii_key }
  in
  Confmask.Workflow.run_exn ~params configs

let test_audit_plain () =
  let r = run_workflow () in
  let scores = Confmask.Audit.of_report r in
  check Alcotest.int "all five attacks scored" 5 (List.length scores);
  List.iter
    (fun (s : Redteam.Attack.score) ->
      if s.precision < 0.0 || s.precision > 1.0 then
        Alcotest.failf "%s precision out of range" s.attack;
      if s.recall < 0.0 || s.recall > 1.0 then
        Alcotest.failf "%s recall out of range" s.attack)
    scores;
  (* No PII: addresses are shared verbatim, so there is no key to hunt. *)
  let kb = find_score "key_bruteforce" scores in
  check Alcotest.int "no key claims" 0 kb.claims;
  check Alcotest.(float 0.0) "identity map detected" 1.0
    (List.assoc "identity" kb.detail);
  (* The anonymized address set is a superset of the original, so the
     whole original hierarchy is visible. *)
  let ps = find_score "prefix_structure" scores in
  check Alcotest.(float 0.0) "hierarchy fully survives" 1.0 ps.recall;
  (* Grounded re-identification over every original router. *)
  let rid = find_score "degree_reid" scores in
  let routers =
    Netcore.Graph.num_nodes
      (Routing.Device.router_graph r.orig_snapshot.net)
  in
  check Alcotest.int "one guess per original router" routers rid.claims;
  check Alcotest.(float 0.0) "grounded" 1.0 (List.assoc "grounded" rid.detail);
  check Alcotest.bool "top5 rate >= top1 rate" true
    (List.assoc "top5_rate" rid.detail +. 1e-9 >= rid.recall);
  (* Fake-link attacks are grounded against the recorded fake edges. *)
  let fp = find_score "filter_pattern" scores in
  check Alcotest.int "relevant = injected fake edges"
    (List.length (List.sort_uniq compare r.fake_edges))
    fp.relevant

let test_audit_weak_key_recovered () =
  let r = run_workflow ~pii:true ~pii_key:(Pii.Pan.key_of_int 7) () in
  let scores = Confmask.Audit.of_report ~key_range:64 r in
  let kb = find_score "key_bruteforce" scores in
  check Alcotest.(float 0.0) "weak key recovered" 1.0 kb.recall;
  check Alcotest.(float 0.0) "recovered the planted seed" 7.0
    (List.assoc "recovered_seed" kb.detail);
  (* Crypto-PAn's defining leak: renaming and remapping change nothing
     about the hierarchy fingerprint. *)
  let ps = find_score "prefix_structure" scores in
  check Alcotest.(float 0.0) "hierarchy survives the Pan map" 1.0 ps.recall

let test_audit_strong_key_safe () =
  let key =
    match Pii.Pan.key_of_string "0xdeadbeefcafef00d" with
    | Ok k -> k
    | Error m -> Alcotest.fail m
  in
  let r = run_workflow ~pii:true ~pii_key:key () in
  let kb =
    find_score "key_bruteforce" (Confmask.Audit.of_report ~key_range:4096 r)
  in
  check Alcotest.(float 0.0) "64-bit key not recovered" 0.0 kb.recall;
  check Alcotest.int "no false claim" 0 kb.claims

let test_audit_deterministic_record () =
  let r = run_workflow ~pii:true ~pii_key:(Pii.Pan.key_of_int 3) () in
  let a = Confmask.Audit.record_json (Confmask.Audit.of_report ~key_range:64 r) in
  let b = Confmask.Audit.record_json (Confmask.Audit.of_report ~key_range:64 r) in
  check Alcotest.string "byte-identical records" a b;
  check Alcotest.bool "record is a JSON array" true
    (String.length a > 2 && a.[0] = '[')

let test_audit_check_infers_truth () =
  (* The two-directory surface: names are shared (no PII), so Audit.check
     must infer the identity correspondence and the exact fake-edge set —
     and agree byte-for-byte with the report-grounded audit. *)
  let r = run_workflow () in
  let from_report = Confmask.Audit.of_report r in
  let inferred =
    Confmask.Audit.check ~orig_configs:r.orig_configs ~orig:r.orig_snapshot
      ~anon_configs:r.anon_configs ~anon:r.anon_snapshot ()
  in
  check Alcotest.string "inferred ground truth matches recorded"
    (Confmask.Audit.record_json from_report)
    (Confmask.Audit.record_json inferred)

let test_audit_subset () =
  let r = run_workflow () in
  let scores = Confmask.Audit.of_report ~attacks:[ "no_traffic" ] r in
  check Alcotest.int "subset runs one attack" 1 (List.length scores);
  check Alcotest.string "the requested one" "no_traffic"
    (List.hd scores).attack

let () =
  Alcotest.run "redteam"
    [
      ( "interface",
        [
          Alcotest.test_case "score conventions" `Quick test_score_conventions;
          Alcotest.test_case "edge hits" `Quick test_edge_hits;
          Alcotest.test_case "reid signature" `Quick test_reid_signature;
          Alcotest.test_case "branch depths" `Quick test_branch_depths;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "audit",
        [
          Alcotest.test_case "plain pair" `Quick test_audit_plain;
          Alcotest.test_case "weak key recovered" `Quick
            test_audit_weak_key_recovered;
          Alcotest.test_case "64-bit key safe" `Quick test_audit_strong_key_safe;
          Alcotest.test_case "deterministic record" `Quick
            test_audit_deterministic_record;
          Alcotest.test_case "check infers ground truth" `Quick
            test_audit_check_infers_truth;
          Alcotest.test_case "attack subset" `Quick test_audit_subset;
        ] );
    ]
