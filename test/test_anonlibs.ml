(* Tests for the anonymization substrates: k-degree graph anonymization,
   the NetHide baseline, the Config2Spec miner, and the PII add-on. *)

open Netcore

let check = Alcotest.check

(* -------------------- Degree_anon -------------------- *)

let test_degree_anon_basic () =
  let degrees = [ 5; 5; 3; 3; 2; 1 ] in
  let targets = Graphanon.Degree_anon.anonymize_sequence ~k:2 degrees in
  check Alcotest.bool "k-anonymous" true (Graphanon.Degree_anon.is_k_anonymous ~k:2 targets);
  List.iter2
    (fun o t -> if t < o then Alcotest.failf "target %d below original %d" t o)
    degrees targets

let test_degree_anon_small_input () =
  (* 3 degrees can never be 5-anonymous; silently returning one group of
     3 used to hide the broken guarantee from callers. *)
  Alcotest.check_raises "rejected"
    (Invalid_argument
       "Degree_anon.anonymize_sequence: 3 degrees cannot be 5-anonymous")
    (fun () ->
      ignore (Graphanon.Degree_anon.anonymize_sequence ~k:5 [ 4; 2; 1 ]))

let test_degree_anon_exactly_k () =
  (* n = k is the smallest feasible input: one group at the maximum. *)
  let targets = Graphanon.Degree_anon.anonymize_sequence ~k:3 [ 4; 2; 1 ] in
  check Alcotest.(list int) "single group at max" [ 4; 4; 4 ] targets;
  check Alcotest.bool "k-anonymous" true
    (Graphanon.Degree_anon.is_k_anonymous ~k:3 targets)

let test_degree_anon_k_plus_one () =
  (* n = k + 1 still admits only one group (two groups would need 2k). *)
  let targets = Graphanon.Degree_anon.anonymize_sequence ~k:3 [ 5; 4; 2; 1 ] in
  check Alcotest.(list int) "single group at max" [ 5; 5; 5; 5 ] targets;
  check Alcotest.bool "k-anonymous" true
    (Graphanon.Degree_anon.is_k_anonymous ~k:3 targets)

let test_degree_anon_already_anonymous () =
  let degrees = [ 3; 3; 3; 2; 2; 2 ] in
  let targets = Graphanon.Degree_anon.anonymize_sequence ~k:3 degrees in
  check Alcotest.(list int) "unchanged" degrees targets;
  check Alcotest.int "zero cost" 0 (Graphanon.Degree_anon.total_increase ~orig:degrees ~target:targets)

let test_degree_anon_order_preserved () =
  (* Results map back to input positions, not sorted order. *)
  let degrees = [ 1; 9; 2; 8 ] in
  let targets = Graphanon.Degree_anon.anonymize_sequence ~k:2 degrees in
  check Alcotest.int "length" 4 (List.length targets);
  List.iter2
    (fun o t -> if t < o then Alcotest.failf "increase-only violated (%d -> %d)" o t)
    degrees targets;
  check Alcotest.bool "anonymous" true (Graphanon.Degree_anon.is_k_anonymous ~k:2 targets)

let prop_degree_anon =
  QCheck2.Test.make ~name:"degree anonymization: k-anonymous and increase-only"
    ~count:300
    QCheck2.Gen.(pair (int_range 1 6) (list_size (int_range 1 40) (int_bound 20)))
    (fun (k, degrees) ->
      if List.length degrees < k then
        (* Infeasible inputs must be rejected, never silently under-grouped. *)
        match Graphanon.Degree_anon.anonymize_sequence ~k degrees with
        | _ -> false
        | exception Invalid_argument _ -> true
      else
        let targets = Graphanon.Degree_anon.anonymize_sequence ~k degrees in
        List.length targets = List.length degrees
        && List.for_all2 (fun o t -> t >= o) degrees targets
        && Graphanon.Degree_anon.is_k_anonymous ~k targets)

(* -------------------- Realize -------------------- *)

let star n =
  (* One hub, n spokes: worst case degree spread. *)
  Graph.of_edges (List.init n (fun i -> ("hub", Printf.sprintf "s%d" i)))

let test_realize_star () =
  let g = star 8 in
  let rng = Rng.create 11 in
  let g', added = Graphanon.Realize.add_edges ~rng ~k:4 g in
  check Alcotest.bool "k-anonymous" true (Gmetrics.is_k_degree_anonymous 4 g');
  check Alcotest.bool "edges added" true (added <> []);
  (* Supergraph: all original edges intact. *)
  List.iter
    (fun (u, v) ->
      if not (Graph.mem_edge u v g') then Alcotest.failf "edge %s-%s removed" u v)
    (Graph.edges g)

let test_realize_respects_allowed_when_possible () =
  (* Two cliques of 4; allowed = same clique. Degrees are already uniform,
     so nothing should be added. *)
  let clique tag =
    let names = List.init 4 (fun i -> Printf.sprintf "%s%d" tag i) in
    List.concat_map
      (fun u -> List.filter_map (fun v -> if u < v then Some (u, v) else None) names)
      names
  in
  let g = Graph.of_edges (clique "a" @ clique "b") in
  let rng = Rng.create 3 in
  let _, added = Graphanon.Realize.add_edges ~rng ~k:4 g in
  check Alcotest.(list (pair string string)) "nothing to add" [] added

let test_realize_k_exceeds_nodes () =
  Alcotest.check_raises "invalid k"
    (Invalid_argument "Realize.add_edges: k = 9 exceeds 3 nodes") (fun () ->
      ignore
        (Graphanon.Realize.add_edges ~rng:(Rng.create 1) ~k:9
           (Graph.of_edges [ ("a", "b"); ("b", "c") ])))

let prop_realize =
  QCheck2.Test.make ~name:"realize: k-anonymous supergraph" ~count:60
    QCheck2.Gen.(
      pair (int_range 2 4)
        (list_size (int_range 4 30) (pair (int_bound 12) (int_bound 12))))
    (fun (k, pairs) ->
      let edges =
        List.filter_map
          (fun (a, b) ->
            if a = b then None else Some (string_of_int a, string_of_int b))
          pairs
      in
      QCheck2.assume (edges <> []);
      let g = Graph.of_edges edges in
      QCheck2.assume (Graph.num_nodes g >= k);
      let g', _ = Graphanon.Realize.add_edges ~rng:(Rng.create 5) ~k g in
      Gmetrics.is_k_degree_anonymous k g'
      && List.for_all (fun (u, v) -> Graph.mem_edge u v g') (Graph.edges g))

(* -------------------- NetHide -------------------- *)

let grid =
  (* 3x3 grid *)
  let name i j = Printf.sprintf "n%d%d" i j in
  let edges = ref [] in
  for i = 0 to 2 do
    for j = 0 to 2 do
      if i < 2 then edges := (name i j, name (i + 1) j) :: !edges;
      if j < 2 then edges := (name i j, name i (j + 1)) :: !edges
    done
  done;
  Graph.of_edges !edges

let all_pairs g =
  let nodes = Graph.nodes g in
  List.concat_map
    (fun u -> List.filter_map (fun v -> if u < v then Some (u, v) else None) nodes)
    nodes

let test_forwarding_path () =
  match Nethide.forwarding_path grid "n00" "n22" with
  | Some p ->
      check Alcotest.int "shortest length" 5 (List.length p);
      check Alcotest.string "starts" "n00" (List.hd p);
      check Alcotest.string "ends" "n22" (List.nth p 4)
  | None -> Alcotest.fail "expected a path"

let test_forwarding_deterministic () =
  let a = Nethide.forwarding_path grid "n00" "n22" in
  let b = Nethide.forwarding_path grid "n00" "n22" in
  check Alcotest.bool "deterministic" true (a = b)

let test_forwarding_unreachable () =
  let g = Graph.add_node "lonely" grid in
  check Alcotest.bool "unreachable" true
    (Nethide.forwarding_path g "n00" "lonely" = None)

let test_path_similarity () =
  check (Alcotest.float 1e-9) "identical" 1.0
    (Nethide.path_similarity [ "a"; "b"; "c" ] [ "a"; "b"; "c" ]);
  check (Alcotest.float 1e-9) "disjoint" 0.0
    (Nethide.path_similarity [ "a"; "b" ] [ "c"; "d" ]);
  let s = Nethide.path_similarity [ "a"; "b"; "c" ] [ "a"; "b"; "d" ] in
  check Alcotest.bool "partial in (0,1)" true (s > 0.0 && s < 1.0)

let test_obfuscate_changes_topology () =
  let rng = Rng.create 9 in
  let flows = all_pairs grid in
  let g' = Nethide.obfuscate ~rng grid ~flows in
  check Alcotest.bool "node set preserved" true
    (List.sort compare (Graph.nodes g') = List.sort compare (Graph.nodes grid));
  check Alcotest.bool "connected" true (Gmetrics.connected g');
  check Alcotest.bool "topology perturbed" true
    (not (Graph.equal g' grid))

let test_obfuscate_respects_budget () =
  let rng = Rng.create 9 in
  let flows = all_pairs grid in
  let params = { Nethide.default_params with similarity_budget = 0.6 } in
  let g' = Nethide.obfuscate ~params ~rng grid ~flows in
  let sims =
    List.filter_map
      (fun (s, d) ->
        match (Nethide.forwarding_path grid s d, Nethide.forwarding_path g' s d) with
        | Some p0, Some p1 -> Some (Nethide.path_similarity p0 p1)
        | _ -> Some 0.0)
      flows
  in
  let avg = List.fold_left ( +. ) 0.0 sims /. float_of_int (List.length sims) in
  check Alcotest.bool (Printf.sprintf "similarity %.2f >= 0.6" avg) true (avg >= 0.6)

(* -------------------- Spec -------------------- *)

let paths_fixture =
  [
    (("h1", "h2"), [ [ "h1"; "r1"; "r2"; "h2" ] ]);
    (("h1", "h3"), [ [ "h1"; "r1"; "r2"; "h3" ]; [ "h1"; "r1"; "r3"; "h3" ] ]);
    (("h2", "h1"), [ [ "h2"; "r2"; "r1"; "h1" ] ]);
  ]

let test_spec_mining () =
  let specs = Spec.mine_paths paths_fixture in
  let has p = List.mem p specs in
  check Alcotest.bool "reach" true (has (Spec.Reachability ("h1", "h2")));
  check Alcotest.bool "waypoint r1" true (has (Spec.Waypoint ("h1", "h2", "r1")));
  check Alcotest.bool "waypoint common only" true (has (Spec.Waypoint ("h1", "h3", "r1")));
  check Alcotest.bool "no divergent waypoint" false (has (Spec.Waypoint ("h1", "h3", "r2")));
  check Alcotest.bool "loadbalance" true (has (Spec.Loadbalance ("h1", "h3", 2)));
  check Alcotest.bool "no single-path loadbalance" false
    (List.exists (function Spec.Loadbalance ("h1", "h2", _) -> true | _ -> false) specs)

let test_spec_diff () =
  let orig = Spec.mine_paths paths_fixture in
  let anon_paths =
    (* h1->h2 rerouted via r3; a fake-host pair appears. *)
    [
      (("h1", "h2"), [ [ "h1"; "r1"; "r3"; "h2" ] ]);
      (("h1", "h3"), [ [ "h1"; "r1"; "r2"; "h3" ]; [ "h1"; "r1"; "r3"; "h3" ] ]);
      (("h2", "h1"), [ [ "h2"; "r2"; "r1"; "h1" ] ]);
      (("h1", "fh1"), [ [ "h1"; "r1"; "fh1" ] ]);
    ]
  in
  let anon = Spec.mine_paths anon_paths in
  let d = Spec.compare_specs ~orig ~anon in
  check Alcotest.bool "reach kept" true (List.mem (Spec.Reachability ("h1", "h2")) d.kept);
  check Alcotest.bool "waypoint r2 lost" true (List.mem (Spec.Waypoint ("h1", "h2", "r2")) d.lost);
  check Alcotest.bool "fake reach introduced" true
    (List.mem (Spec.Reachability ("h1", "fh1")) d.introduced);
  let frac = Spec.kept_fraction d in
  check Alcotest.bool "fraction in (0,1)" true (frac > 0.0 && frac < 1.0);
  let fake_only = Spec.introduced_involving d ~hosts:[ "h1"; "h2"; "h3" ] in
  check Alcotest.bool "introduced classified as fake-host specs" true
    (List.for_all
       (fun p -> let _, dst = Spec.endpoints p in dst = "fh1")
       fake_only
    && fake_only <> [])

let test_spec_mine_simulation () =
  let snap = Routing.Simulate.run_exn (Netgen.Nets.configs (Netgen.Nets.find "G")) in
  let specs = Spec.mine (Routing.Simulate.dataplane snap) in
  (* FatTree04: every pair reachable, cross-pod pairs load-balanced. *)
  check Alcotest.bool "many specs" true (List.length specs > 240);
  check Alcotest.bool "has loadbalance" true
    (List.exists (function Spec.Loadbalance _ -> true | _ -> false) specs)

(* -------------------- Pii -------------------- *)

let test_pan_prefix_preserving () =
  let key = Pii.Pan.key_of_int 99 in
  let a = Ipv4.of_string_exn "10.1.2.3" and b = Ipv4.of_string_exn "10.1.2.200" in
  let a' = Pii.Pan.addr key a and b' = Pii.Pan.addr key b in
  let common x y =
    let x = Ipv4.to_int x and y = Ipv4.to_int y in
    let rec count i = if i >= 32 then 32
      else if (x lsr (31 - i)) land 1 = (y lsr (31 - i)) land 1 then count (i + 1)
      else i
    in
    count 0
  in
  check Alcotest.int "common prefix preserved" (common a b) (common a' b');
  check Alcotest.bool "addresses changed" true
    (not (Ipv4.equal a a') || not (Ipv4.equal b b'))

let prop_pan_prefix =
  QCheck2.Test.make ~name:"pan: exact common-prefix preservation" ~count:500
    QCheck2.Gen.(triple (int_bound 1000) (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF))
    (fun (k, x, y) ->
      let key = Pii.Pan.key_of_int k in
      let common a b =
        let rec count i =
          if i >= 32 then 32
          else if (a lsr (31 - i)) land 1 = (b lsr (31 - i)) land 1 then count (i + 1)
          else i
        in
        count 0
      in
      let x' = Ipv4.to_int (Pii.Pan.addr key (Ipv4.of_int x)) in
      let y' = Ipv4.to_int (Pii.Pan.addr key (Ipv4.of_int y)) in
      common x y = common x' y')

let prop_pan_bijective =
  QCheck2.Test.make ~name:"pan: injective on samples" ~count:300
    QCheck2.Gen.(pair (int_bound 1000) (pair (int_bound 0xFFFFFF) (int_bound 0xFFFFFF)))
    (fun (k, (x, y)) ->
      QCheck2.assume (x <> y);
      let key = Pii.Pan.key_of_int k in
      Pii.Pan.addr key (Ipv4.of_int x) <> Pii.Pan.addr key (Ipv4.of_int y))

let test_pan_bijection_16bit () =
  (* Exhaustive on a /16: every address of 10.7.0.0/16 maps to a distinct
     address sharing the mapped 16-bit prefix — a bijection restricted to
     the subspace, exactly as prefix preservation promises. *)
  let key = Pii.Pan.key_of_int 12345 in
  let base = (10 lsl 24) lor (7 lsl 16) in
  let seen = Hashtbl.create 65536 in
  let mapped_prefix =
    Ipv4.to_int (Pii.Pan.addr key (Ipv4.of_int base)) lsr 16
  in
  for off = 0 to 0xFFFF do
    let out = Ipv4.to_int (Pii.Pan.addr key (Ipv4.of_int (base lor off))) in
    if Hashtbl.mem seen out then
      Alcotest.failf "collision at offset %d (0x%08x)" off out;
    Hashtbl.replace seen out ();
    if out lsr 16 <> mapped_prefix then
      Alcotest.failf "offset %d left the mapped /16" off
  done;
  check Alcotest.int "all 65536 outputs distinct" 65536 (Hashtbl.length seen)

let test_pan_distinct_keys () =
  (* Distinct keys give distinct mappings: the probe vector under key k
     differs from the vector under every other key. *)
  let probes =
    List.map Ipv4.of_string_exn
      [ "10.0.0.1"; "192.168.17.5"; "172.16.254.3"; "8.8.8.8" ]
  in
  let vector k =
    List.map (fun a -> Ipv4.to_int (Pii.Pan.addr k a)) probes
  in
  let seen = Hashtbl.create 128 in
  for n = 0 to 100 do
    let v = vector (Pii.Pan.key_of_int n) in
    (match Hashtbl.find_opt seen v with
    | Some n' -> Alcotest.failf "keys %d and %d induce the same mapping" n' n
    | None -> ());
    Hashtbl.replace seen v n
  done

let test_pan_key_of_string () =
  (* Round trip through the canonical hex form. *)
  let k = Pii.Pan.key_of_int 7 in
  (match Pii.Pan.key_of_string (Pii.Pan.key_to_string k) with
  | Ok k' -> check Alcotest.bool "round trip" true (Pii.Pan.key_equal k k')
  | Error m -> Alcotest.failf "round trip rejected: %s" m);
  (* 0x prefix optional; all 64 bits used. *)
  let probe = Ipv4.of_string_exn "10.1.2.3" in
  (match
     (Pii.Pan.key_of_string "0xdeadbeefcafef00d",
      Pii.Pan.key_of_string "deadbeefcafef00d")
   with
  | Ok a, Ok b ->
      check Alcotest.bool "prefix optional" true (Pii.Pan.key_equal a b);
      check Alcotest.bool "full-width key still prefix-preserving" true
        (Ipv4.to_int (Pii.Pan.addr a probe) lsr 24
        = Ipv4.to_int (Pii.Pan.addr a (Ipv4.of_string_exn "10.200.0.9")) lsr 24)
  | _ -> Alcotest.fail "valid hex keys rejected");
  List.iter
    (fun s ->
      match Pii.Pan.key_of_string s with
      | Ok _ -> Alcotest.failf "malformed key %S accepted" s
      | Error _ -> ())
    [ ""; "0x"; "zz"; "0xdeadbeefcafef00d7"; "12 34"; "-5" ]

let test_scrub_consistency () =
  (* Scrubbed configs must still compile and keep full reachability. *)
  let configs = Netgen.Nets.configs (Netgen.Nets.find "A") in
  let scrubbed = Pii.Scrub.scrub ~key:(Pii.Pan.key_of_int 5) configs in
  let snap = Routing.Simulate.run_exn scrubbed in
  let dp = Routing.Simulate.dataplane snap in
  let hosts = List.map fst (Routing.Device.Smap.bindings snap.net.hosts) in
  check Alcotest.int "host count" 8 (List.length hosts);
  List.iter
    (fun s ->
      List.iter
        (fun d ->
          if s <> d && (Hashtbl.find dp (s, d)).Routing.Dataplane.delivered = []
          then Alcotest.failf "scrub broke %s -> %s" s d)
        hosts)
    hosts;
  (* Topology is isomorphic: same degree histogram. *)
  let orig_snap = Routing.Simulate.run_exn configs in
  check
    Alcotest.(list (pair int int))
    "same degree histogram"
    (Gmetrics.degree_histogram (Routing.Device.router_graph orig_snap.net))
    (Gmetrics.degree_histogram (Routing.Device.router_graph snap.net))

let test_scrub_preserves_acl_semantics () =
  (* Prefix-preserving rewriting keeps ACL endpoints aligned with host
     subnets, so the scrubbed network drops exactly the same (renamed)
     flows. *)
  let config lines = Configlang.Parser.parse_exn (String.concat "\n" lines) in
  let nets =
    [
      config
        [
          "hostname r1";
          "interface Eth0";
          " ip address 10.0.12.1 255.255.255.0";
          "!";
          "interface Eth1";
          " ip address 10.1.1.1 255.255.255.0";
          "!";
          "router ospf 1";
          " network 10.0.0.0 0.255.255.255 area 0";
        ];
      config
        [
          "hostname r2";
          "interface Eth0";
          " ip address 10.0.12.2 255.255.255.0";
          " ip access-group BLOCK in";
          "!";
          "interface Eth1";
          " ip address 10.2.2.1 255.255.255.0";
          "!";
          "router ospf 1";
          " network 10.0.0.0 0.255.255.255 area 0";
          "!";
          "ip access-list extended BLOCK";
          " deny ip 10.1.1.0 0.0.0.255 10.2.2.0 0.0.0.255";
          " permit ip any any";
        ];
      config
        [ "hostname h1"; "interface eth0"; " ip address 10.1.1.10 255.255.255.0";
          "ip default-gateway 10.1.1.1" ];
      config
        [ "hostname h2"; "interface eth0"; " ip address 10.2.2.10 255.255.255.0";
          "ip default-gateway 10.2.2.1" ];
    ]
  in
  let scrubbed = Pii.Scrub.scrub ~key:(Pii.Pan.key_of_int 77) nets in
  let snap = Routing.Simulate.run_exn scrubbed in
  let rename = Pii.Scrub.default_rename nets in
  let t =
    Routing.Dataplane.traceroute snap.net snap.fibs ~src:(rename "h1")
      ~dst:(rename "h2")
  in
  check Alcotest.bool "blocked direction still blocked" true (t.delivered = []);
  check Alcotest.bool "still an ACL drop (not a routing drop)" true (t.filtered <> []);
  let back =
    Routing.Dataplane.traceroute snap.net snap.fibs ~src:(rename "h2")
      ~dst:(rename "h1")
  in
  check Alcotest.bool "open direction still open" true (back.delivered <> [])

let test_redact () =
  check Alcotest.string "password" "enable password <redacted>"
    (Pii.Scrub.redact_line "enable password hunter2");
  (* Everything after the keyword goes — redacting only the next token
     would keep "5 $1$abc" and leak the hash after the type digit. *)
  check Alcotest.string "typed secret" "enable secret <redacted>"
    (Pii.Scrub.redact_line "enable secret 5 $1$abc$KKmhhSdyN.Ss1");
  check Alcotest.string "community" "snmp-server community <redacted>"
    (Pii.Scrub.redact_line "snmp-server community sEcReT ro");
  check Alcotest.string "untouched" "no shutdown" (Pii.Scrub.redact_line "no shutdown");
  check Alcotest.string "whitespace preserved" " ip  route\t10.0.0.0"
    (Pii.Scrub.redact_line " ip  route\t10.0.0.0");
  check Alcotest.string "tab before secret" "tacacs-server key <redacted>"
    (Pii.Scrub.redact_line "tacacs-server key\tS3cr3t");
  check Alcotest.string "trailing keyword" "crypto key"
    (Pii.Scrub.redact_line "crypto key");
  (* Hyphen-compounded keywords: whole-token equality alone let these
     Cisco forms through unredacted. *)
  check Alcotest.string "key-string" "key-string <redacted>"
    (Pii.Scrub.redact_line "key-string 7 0822455D0A16");
  check Alcotest.string "community-map" "snmp-server community-map <redacted>"
    (Pii.Scrub.redact_line "snmp-server community-map cOmMuN1ty context ctx");
  check Alcotest.string "md5 auth" "ip ospf message-digest-key 1 md5 <redacted>"
    (Pii.Scrub.redact_line "ip ospf message-digest-key 1 md5 S3cr3tH4sh");
  check Alcotest.string "trailing compound keyword" "service password-encryption"
    (Pii.Scrub.redact_line "service password-encryption")

(* No whitespace-delimited token appearing after a sensitive keyword may
   survive redaction. *)
let prop_redact_no_leak =
  let open QCheck2 in
  let keyword =
    (* Bare keywords plus hyphen-compounded Cisco forms — the regression
       class the whole-token matcher used to leak. *)
    Gen.oneofl
      [
        "password"; "secret"; "community"; "key"; "key-string"; "md5";
        "community-map"; "key-chain"; "password-prompt";
      ]
  in
  let token =
    (* Distinctive secrets, never equal to a keyword or "<redacted>". *)
    Gen.map (Printf.sprintf "ZQ%d") (Gen.int_bound 99999)
  in
  let word = Gen.oneofl [ "enable"; "snmp-server"; "7"; "5"; "ro"; "ip" ] in
  let sep = Gen.oneofl [ " "; "  "; "\t"; " \t " ] in
  let gen_line =
    Gen.map
      (fun (pre, kw, s1, parts) ->
        let tail = List.concat_map (fun (s, t) -> [ s; t ]) parts in
        String.concat "" ((pre ^ " " ^ kw ^ s1) :: tail))
      (Gen.quad word keyword sep
         (Gen.list_size (Gen.int_range 1 4) (Gen.pair sep token)))
  in
  QCheck2.Test.make ~name:"no token after a sensitive keyword survives scrub"
    ~count:500 gen_line (fun line ->
      let out = Pii.Scrub.redact_line line in
      let is_space c = c = ' ' || c = '\t' in
      let tokens s =
        String.fold_left
          (fun (acc, cur) c ->
            if is_space c then
              ((if cur = "" then acc else cur :: acc), "")
            else (acc, cur ^ String.make 1 c))
          ([], "") s
        |> fun (acc, cur) -> if cur = "" then acc else cur :: acc
      in
      let keywords =
        [ "password"; "secret"; "community"; "key"; "key-string"; "md5" ]
      in
      let sensitive w =
        let w = String.lowercase_ascii w in
        List.exists
          (fun kw ->
            w = kw
            || (String.length w > String.length kw
                && String.sub w 0 (String.length kw + 1) = kw ^ "-"))
          keywords
      in
      let rec after_kw = function
        | [] -> []
        | w :: rest when sensitive w -> rest
        | _ :: rest -> after_kw rest
      in
      let secrets = after_kw (List.rev (tokens line)) in
      List.for_all (fun s -> not (List.mem s (tokens out))) secrets)

let test_default_rename () =
  let configs = Netgen.Nets.configs (Netgen.Nets.find "CCNP") in
  let rename = Pii.Scrub.default_rename configs in
  check Alcotest.string "router renamed" "node1" (rename "p1");
  check Alcotest.bool "host renamed" true
    (String.length (rename "hp1") >= 5 && String.sub (rename "hp1") 0 4 = "host");
  check Alcotest.string "unknown unchanged" "zzz" (rename "zzz")

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_degree_anon;
      prop_realize;
      prop_pan_prefix;
      prop_pan_bijective;
      prop_redact_no_leak;
    ]

let () =
  Alcotest.run "anonlibs"
    [
      ( "degree_anon",
        [
          Alcotest.test_case "basic" `Quick test_degree_anon_basic;
          Alcotest.test_case "input smaller than k" `Quick test_degree_anon_small_input;
          Alcotest.test_case "input exactly k" `Quick test_degree_anon_exactly_k;
          Alcotest.test_case "input of k+1" `Quick test_degree_anon_k_plus_one;
          Alcotest.test_case "already anonymous" `Quick test_degree_anon_already_anonymous;
          Alcotest.test_case "order preserved" `Quick test_degree_anon_order_preserved;
        ] );
      ( "realize",
        [
          Alcotest.test_case "star graph" `Quick test_realize_star;
          Alcotest.test_case "constraint respected" `Quick test_realize_respects_allowed_when_possible;
          Alcotest.test_case "k too large" `Quick test_realize_k_exceeds_nodes;
        ] );
      ( "nethide",
        [
          Alcotest.test_case "forwarding path" `Quick test_forwarding_path;
          Alcotest.test_case "deterministic" `Quick test_forwarding_deterministic;
          Alcotest.test_case "unreachable" `Quick test_forwarding_unreachable;
          Alcotest.test_case "path similarity" `Quick test_path_similarity;
          Alcotest.test_case "obfuscation perturbs" `Quick test_obfuscate_changes_topology;
          Alcotest.test_case "similarity budget" `Quick test_obfuscate_respects_budget;
        ] );
      ( "spec",
        [
          Alcotest.test_case "mining" `Quick test_spec_mining;
          Alcotest.test_case "diff" `Quick test_spec_diff;
          Alcotest.test_case "mining a simulation" `Quick test_spec_mine_simulation;
        ] );
      ( "pii",
        [
          Alcotest.test_case "prefix preserving" `Quick test_pan_prefix_preserving;
          Alcotest.test_case "bijection on a /16" `Quick test_pan_bijection_16bit;
          Alcotest.test_case "distinct keys, distinct maps" `Quick
            test_pan_distinct_keys;
          Alcotest.test_case "hex key parsing" `Quick test_pan_key_of_string;
          Alcotest.test_case "scrub consistency" `Quick test_scrub_consistency;
          Alcotest.test_case "scrub preserves ACL semantics" `Quick
            test_scrub_preserves_acl_semantics;
          Alcotest.test_case "redaction" `Quick test_redact;
          Alcotest.test_case "default rename" `Quick test_default_rename;
        ] );
      ("properties", qsuite);
    ]
